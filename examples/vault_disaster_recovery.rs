//! Disaster recovery drill: preserve an archive into a redundant
//! vault, rot one replica on disk, and watch the scrub detect, repair
//! and revalidate it — then repeat the drill in erasure mode, where
//! two *entire backends* die and the stripe still reconstructs.
//!
//! ```text
//! cargo run --example vault_disaster_recovery
//! ```
//!
//! This is Appendix A's disaster-recovery rubric (Q5F) made executable:
//! redundancy is the written plan (Level 3), the scrub is the
//! implementation procedure that makes loss unlikely (Level 4), and
//! running the drill routinely is the Level 5 habit.

use std::sync::Arc;

use bytes::Bytes;
use daspos::archive::ContainerVerifier;
use daspos::prelude::*;
use daspos::vault::{Redundancy, StorageBackend};

fn main() {
    // 1. Produce something worth preserving: a small CMS Z-boson chain,
    //    packaged into a self-contained archive.
    let workflow = PreservedWorkflow::standard_z(Experiment::Cms, 2013, 120);
    let ctx = ExecutionContext::fresh(&workflow);
    let output = workflow.execute(&ctx, &ExecOptions::default()).expect("chain executes");
    let archive = PreservationArchive::builder("cms-z-drill")
        .production(&workflow, &ctx, &output)
        .expect("packages")
        .build();
    let pristine = archive.to_bytes();
    println!("packaged '{}' — {} bytes across {} sections", archive.name, pristine.len(), archive.sections.len());

    // 2. Vault it on disk: three replica directories, each a complete
    //    copy, with deep container verification on every read and scrub.
    let root = std::env::temp_dir().join(format!("daspos-vault-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let replicas = 3usize;
    let backends: Vec<Arc<dyn StorageBackend>> = (0..replicas)
        .map(|i| Arc::new(DirBackend::new(root.join(format!("replica-{i}")))) as Arc<dyn StorageBackend>)
        .collect();
    let vault = Vault::builder()
        .verifier(Arc::new(ContainerVerifier))
        .backends(backends)
        .redundancy(Redundancy::Replicas(replicas))
        .build()
        .expect("vault builds");
    vault.put("cms-z-drill.dpar", ObjectKind::Container, &pristine).expect("stored");
    println!("stored on {replicas} replicas under {}", root.display());

    // 3. Disaster: flip bytes in the middle of replica 1's copy — the
    //    kind of silent media rot a preservation system must outlive.
    let victim = root.join("replica-1").join("cms-z-drill.dpar");
    let mut rotted = std::fs::read(&victim).expect("replica file exists");
    let mid = rotted.len() / 2;
    for b in &mut rotted[mid..mid + 16] {
        *b ^= 0xA5;
    }
    std::fs::write(&victim, &rotted).expect("rot lands");
    println!("rotted 16 bytes in {}", victim.display());

    // 4. Audit finds it; scrub heals it from the surviving replicas.
    let audit = vault.verify().expect("verify runs");
    println!("audit: {}", audit.to_text());
    assert!(!audit.clean(), "the audit must see the damage");
    let scrub = vault.scrub().expect("scrub runs");
    println!("scrub: {}", scrub.to_text());
    assert!(scrub.clean(), "scrub must repair the damage");

    // 5. Recovery is byte-identical, and the restored archive still
    //    validates by re-executing its own preserved workflow.
    let (kind, restored) = vault.get("cms-z-drill.dpar").expect("recovered");
    assert_eq!(kind, ObjectKind::Container);
    assert_eq!(restored, pristine, "recovery must be byte-identical");
    let reopened = PreservationArchive::from_bytes(&Bytes::from(restored.to_vec())).expect("decodes");
    let report = Validator::new(&Platform::current()).run(&reopened).expect("validation runs");
    assert!(report.passed(), "{}", report.detail);
    println!("recovered byte-identically; archive revalidates: {}", report.detail);

    // 6. The same drill at multi-site scale: stripe the archive 4+2
    //    over six backend directories — half the bytes of 3 replicas at
    //    the same 2-failure tolerance — and kill two whole backends.
    let shard_backends: Vec<Arc<dyn StorageBackend>> = (0..6)
        .map(|i| Arc::new(DirBackend::new(root.join(format!("shard-{i}")))) as Arc<dyn StorageBackend>)
        .collect();
    let ec_vault = Vault::builder()
        .verifier(Arc::new(ContainerVerifier))
        .backends(shard_backends)
        .redundancy(Redundancy::Erasure { k: 4, m: 2 })
        .build()
        .expect("erasure vault builds");
    ec_vault.put("cms-z-drill.dpar", ObjectKind::Container, &pristine).expect("striped");
    let replica_bytes: u64 = (0..replicas)
        .map(|i| dir_bytes(&root.join(format!("replica-{i}"))))
        .sum();
    let shard_bytes: u64 = (0..6).map(|i| dir_bytes(&root.join(format!("shard-{i}")))).sum();
    println!(
        "striped 4+2 over 6 backends: {shard_bytes} bytes on backends vs {replica_bytes} replicated ({:.2}x)",
        shard_bytes as f64 / replica_bytes as f64
    );

    std::fs::remove_dir_all(root.join("shard-1")).expect("backend 1 dies");
    std::fs::remove_dir_all(root.join("shard-4")).expect("backend 4 dies");
    println!("killed backends shard-1 and shard-4 outright");

    let (_, restriped) = ec_vault.get("cms-z-drill.dpar").expect("reconstructs from 4 shards");
    assert_eq!(restriped, pristine, "reconstruction must be byte-identical");
    let scrub = ec_vault.scrub().expect("erasure scrub runs");
    println!("scrub: {}", scrub.to_text());
    assert!(scrub.clean() && scrub.rebuilt == 2, "scrub must rebuild both lost shards");

    let _ = std::fs::remove_dir_all(&root);
    println!("\ndrill PASSED — loss was unlikely, and now it is proven");
}

/// Total bytes of the visible files directly inside `dir`.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}
