//! Disaster recovery drill: preserve an archive into a replicated
//! vault, rot one replica on disk, and watch the scrub detect, repair
//! and revalidate it.
//!
//! ```text
//! cargo run --example vault_disaster_recovery
//! ```
//!
//! This is Appendix A's disaster-recovery rubric (Q5F) made executable:
//! replicas are the written plan (Level 3), the scrub is the
//! implementation procedure that makes loss unlikely (Level 4), and
//! running the drill routinely is the Level 5 habit.

use std::sync::Arc;

use bytes::Bytes;
use daspos::archive::ContainerVerifier;
use daspos::prelude::*;

fn main() {
    // 1. Produce something worth preserving: a small CMS Z-boson chain,
    //    packaged into a self-contained archive.
    let workflow = PreservedWorkflow::standard_z(Experiment::Cms, 2013, 120);
    let ctx = ExecutionContext::fresh(&workflow);
    let output = workflow.execute(&ctx, &ExecOptions::default()).expect("chain executes");
    let archive = PreservationArchive::builder("cms-z-drill")
        .production(&workflow, &ctx, &output)
        .expect("packages")
        .build();
    let pristine = archive.to_bytes();
    println!("packaged '{}' — {} bytes across {} sections", archive.name, pristine.len(), archive.sections.len());

    // 2. Vault it on disk: three replica directories, each a complete
    //    copy, with deep container verification on every read and scrub.
    let root = std::env::temp_dir().join(format!("daspos-vault-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let replicas = 3usize;
    let mut builder = Vault::builder().verifier(Arc::new(ContainerVerifier));
    for i in 0..replicas {
        builder = builder.replica(Arc::new(DirBackend::new(root.join(format!("replica-{i}")))));
    }
    let vault = builder.build().expect("vault builds");
    vault.put("cms-z-drill.dpar", ObjectKind::Container, &pristine).expect("stored");
    println!("stored on {replicas} replicas under {}", root.display());

    // 3. Disaster: flip bytes in the middle of replica 1's copy — the
    //    kind of silent media rot a preservation system must outlive.
    let victim = root.join("replica-1").join("cms-z-drill.dpar");
    let mut rotted = std::fs::read(&victim).expect("replica file exists");
    let mid = rotted.len() / 2;
    for b in &mut rotted[mid..mid + 16] {
        *b ^= 0xA5;
    }
    std::fs::write(&victim, &rotted).expect("rot lands");
    println!("rotted 16 bytes in {}", victim.display());

    // 4. Audit finds it; scrub heals it from the surviving replicas.
    let audit = vault.verify().expect("verify runs");
    println!("audit: {}", audit.to_text());
    assert!(!audit.clean(), "the audit must see the damage");
    let scrub = vault.scrub().expect("scrub runs");
    println!("scrub: {}", scrub.to_text());
    assert!(scrub.clean(), "scrub must repair the damage");

    // 5. Recovery is byte-identical, and the restored archive still
    //    validates by re-executing its own preserved workflow.
    let (kind, restored) = vault.get("cms-z-drill.dpar").expect("recovered");
    assert_eq!(kind, ObjectKind::Container);
    assert_eq!(restored, pristine, "recovery must be byte-identical");
    let reopened = PreservationArchive::from_bytes(&Bytes::from(restored.to_vec())).expect("decodes");
    let report = Validator::new(&Platform::current()).run(&reopened).expect("validation runs");
    assert!(report.passed(), "{}", report.detail);
    println!("recovered byte-identically; archive revalidates: {}", report.detail);

    let _ = std::fs::remove_dir_all(&root);
    println!("\ndrill PASSED — loss was unlikely, and now it is proven");
}
