//! A theorist reinterprets a preserved search through RECAST.
//!
//! ```text
//! cargo run --example recast_reanalysis
//! ```
//!
//! The §2.3 use case end to end: a phenomenologist submits Z′ model
//! points to the experiment's RECAST front end; the back end re-runs the
//! preserved dilepton search through the **full** detector simulation and
//! reconstruction; the experiment approves the results; the theorist
//! turns the released efficiencies into 95% CL cross-section limits and
//! an exclusion verdict per model point.

use std::sync::Arc;

use daspos_conditions::{ConditionsStore, DbSource};
use daspos_detsim::Experiment;
use daspos_gen::NewPhysicsParams;
use daspos_hep::SeedSequence;
use daspos_recast::{cls_upper_limit, FullChainBackend, RecastFrontEnd};
use daspos_rivet::AnalysisRegistry;

fn main() {
    // --- The experiment's side: stand up the closed back end ------------
    let conditions = Arc::new(ConditionsStore::new());
    daspos::workflow::populate_conditions(&conditions, "cms-mc-2013")
        .expect("fresh store accepts tag");
    let registry = Arc::new(AnalysisRegistry::with_builtin());
    let backend = Arc::new(FullChainBackend::new(
        Experiment::Cms.detector(),
        Arc::new(DbSource::connect(conditions, "cms-mc-2013")),
        registry,
        SeedSequence::new(20130321),
    ));
    let frontend = RecastFrontEnd::start(backend, 4);

    // The preserved search's public numbers (what the paper published):
    // background expectation and observation in the signal region, and
    // the dataset's integrated luminosity.
    let background = 4.2; // events expected in m_ll >= 200 GeV
    let n_obs = 4u64; // observed (no excess)
    let lumi_ipb = 5000.0; // 5 fb^-1

    // --- The theorist's side: a scan over Z' masses ---------------------
    println!("Z' -> ll reinterpretation via RECAST (full-chain back end)");
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>10}",
        "mass GeV", "eff", "sigma_model", "sigma_95CL", "excluded?"
    );
    for (mass, sigma_model) in [
        (250.0, 0.050),
        (300.0, 0.020),
        (400.0, 0.0040),
        (500.0, 0.0012),
        (700.0, 0.0003),
    ] {
        let model = NewPhysicsParams {
            mass,
            width: mass * 0.03,
            cross_section_pb: sigma_model,
        };
        let id = frontend
            .submit("SEARCH_2013_I0006", model, 400, "pheno-group")
            .expect("front end accepts");
        frontend.wait(id).expect("request completes");
        // The experiment reviews and approves.
        frontend.approve(id).expect("approval");
        let output = frontend.fetch(id).expect("released");

        let limit = cls_upper_limit(n_obs, background, output.signal_efficiency, lumi_ipb);
        match limit {
            Some(sigma_limit) => {
                let excluded = sigma_model > sigma_limit;
                println!(
                    "{mass:>10.0} {:>10.3} {sigma_model:>12.3} {sigma_limit:>14.4} {:>10}",
                    output.signal_efficiency,
                    if excluded { "YES" } else { "no" }
                );
            }
            None => println!("{mass:>10.0} {:>10.3} {sigma_model:>12.3} {:>14} {:>10}",
                output.signal_efficiency, "-", "no sens."),
        }
    }
    println!(
        "\n(back end re-ran generation, full detector simulation and reconstruction \
         for every point — the cost the report contrasts with the light RIVET path; \
         see `cargo bench -p daspos-bench --bench r1_rivet_vs_recast`)"
    );
    frontend.shutdown();
}
